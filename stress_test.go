package repro

// Large-scale stress tests, skipped under -short: they exercise allocation
// behaviour, int32/int64 boundaries and two-level scheduling on graphs an
// order of magnitude beyond the unit-test sizes.

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/closeness"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/gen"
)

func TestStressLargeSocial(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := gen.SocialLike(gen.SocialParams{N: 20000, AvgDeg: 6, Communities: 120,
		TopShare: 0.4, LeafFrac: 0.35, Seed: 91})
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subgraphs) < 10 {
		t.Fatalf("weak decomposition: %d subgraphs", len(d.Subgraphs))
	}
	// APGRE on 20k vertices; verify a sampled subset of scores against
	// per-source dependency sweeps instead of full O(nm) Brandes.
	bc, err := core.Compute(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 7, 500, 19999} {
		if bc[v] < 0 || math.IsNaN(bc[v]) {
			t.Fatalf("score[%d] = %v", v, bc[v])
		}
	}
	// Full comparison against succs (cheaper constant than preds-serial).
	want := brandes.Succs(g, 0)
	for v := range want {
		if math.Abs(want[v]-bc[v]) > 1e-6*math.Max(1, want[v]) {
			t.Fatalf("stress mismatch at %d: %v vs %v", v, want[v], bc[v])
		}
	}
}

func TestStressLargeRoadCloseness(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := gen.RoadLike(gen.RoadParams{Rows: 100, Cols: 100, DeleteFrac: 0.1,
		SpurFrac: 0.1, SpurLen: 3, Seed: 92})
	want := closeness.Exact(g, 0)
	got, err := closeness.Decomposed(g, closeness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Farness {
		if math.Abs(want.Farness[v]-got.Farness[v]) > 1e-6*(1+want.Farness[v]) {
			t.Fatalf("farness mismatch at %d", v)
		}
	}
}

func TestStressDeepPath(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 200k-vertex path: recursion-free BCC and decomposition must survive
	// extreme depth; BC of a path has the closed form 2·i·(n-1-i).
	n := 200_000
	g := gen.Path(n)
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subgraphs) < 2 {
		t.Fatal("path did not decompose")
	}
	bc, err := core.Compute(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, n / 4, n / 2, n - 2, n - 1} {
		want := 2 * float64(i) * float64(n-1-i)
		if math.Abs(bc[i]-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("path bc[%d] = %v, want %v", i, bc[i], want)
		}
	}
}
