// Package repro is the public API of the APGRE betweenness-centrality
// library, a from-scratch Go reproduction of "Articulation Points Guided
// Redundancy Elimination for Betweenness Centrality" (PPoPP 2016).
//
// Quick start:
//
//	g := repro.GenerateSocial(repro.SocialParams{N: 10000, AvgDeg: 6,
//	    Communities: 40, TopShare: 0.5, LeafFrac: 0.3, Seed: 1})
//	bc, err := repro.BetweennessCentrality(g, repro.Options{Algorithm: repro.AlgoAPGRE})
//	top := repro.TopK(bc, 10)
//
// The package re-exports the graph substrate (CSR storage, generators, I/O),
// the APGRE algorithm with its two-level parallelism, the six published
// baseline algorithms the paper compares against, and the analysis helpers
// that regenerate the paper's tables and figures (see cmd/bcbench).
package repro

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/approx"
	"repro/internal/brandes"
	"repro/internal/closeness"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// Graph is the CSR graph type all algorithms operate on.
type Graph = graph.Graph

// Edge is a (From, To) pair for graph construction.
type Edge = graph.Edge

// V is the vertex id type.
type V = graph.V

// SocialParams re-exports the social-network generator's knobs.
type SocialParams = gen.SocialParams

// WebParams re-exports the web-crawl generator's knobs.
type WebParams = gen.WebParams

// RoadParams re-exports the road-network generator's knobs.
type RoadParams = gen.RoadParams

// NewGraph builds a graph with n vertices from an edge list. Self-loops are
// dropped and parallel edges deduplicated.
func NewGraph(n int, edges []Edge, directed bool) *Graph {
	return graph.NewFromEdges(n, edges, directed)
}

// LoadGraph reads a graph file; format "" infers from the extension
// (.txt/.el edge list, .gr DIMACS, .bin binary CSR, .graphml/.xml GraphML,
// .json d3 node-link).
func LoadGraph(path, format string, directed bool) (*Graph, error) {
	return graphio.LoadFile(path, format, directed)
}

// SaveGraph writes a graph file (edge list, binary CSR, GraphML or JSON by
// extension).
func SaveGraph(path, format string, g *Graph) error {
	return graphio.SaveFile(path, format, g)
}

// GenerateSocial builds a community graph with tunable articulation-point
// and leaf structure — the shape APGRE exploits.
func GenerateSocial(p SocialParams) *Graph { return gen.SocialLike(p) }

// GenerateWeb builds a directed hierarchical web-crawl-like graph.
func GenerateWeb(p WebParams) *Graph { return gen.WebLike(p) }

// GenerateRoad builds an undirected road-network-like graph.
func GenerateRoad(p RoadParams) *Graph { return gen.RoadLike(p) }

// GenerateErdosRenyi builds a uniform random graph (the "no redundancy"
// control: almost surely biconnected when dense).
func GenerateErdosRenyi(n int, m int64, directed bool, seed int64) *Graph {
	return gen.ErdosRenyi(n, m, directed, seed)
}

// GenerateBarabasiAlbert builds a preferential-attachment power-law graph.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph {
	return gen.BarabasiAlbert(n, k, seed)
}

// Algorithm names an exact-BC implementation.
type Algorithm string

// The available algorithms: APGRE (the paper's contribution) and the six
// baselines of its evaluation (§5.1).
const (
	AlgoAPGRE        Algorithm = "apgre"
	AlgoSerial       Algorithm = "serial"       // preds-serial [12]
	AlgoPreds        Algorithm = "preds"        // Bader–Madduri [12]
	AlgoSuccs        Algorithm = "succs"        // Madduri et al. [13]
	AlgoLockSyncFree Algorithm = "locksyncfree" // Tan et al. [14]
	AlgoAsync        Algorithm = "async"        // Prountzos–Pingali [11], undirected only
	AlgoHybrid       Algorithm = "hybrid"       // Ligra/direction-optimizing [25][33]
)

// Algorithms lists every algorithm name accepted by Options.Algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoAPGRE, AlgoSerial, AlgoPreds, AlgoSuccs,
		AlgoLockSyncFree, AlgoAsync, AlgoHybrid}
}

// Options configures BetweennessCentrality.
type Options struct {
	// Algorithm selects the implementation; empty means AlgoAPGRE.
	Algorithm Algorithm
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Threshold is APGRE's decomposition merge threshold (Algorithm 1);
	// <= 0 means the default (64).
	Threshold int
	// DisableGamma turns off APGRE's total-redundancy elimination.
	DisableGamma bool
	// Breakdown, when non-nil, receives APGRE's phase timings.
	Breakdown *core.Breakdown
}

// BetweennessCentrality computes exact BC scores for every vertex using the
// selected algorithm. Scores use the directed-sum convention (each unordered
// pair of an undirected graph counts in both directions), identical across
// all algorithms.
func BetweennessCentrality(g *Graph, opt Options) ([]float64, error) {
	switch opt.Algorithm {
	case AlgoAPGRE, "":
		return core.Compute(g, core.Options{
			Workers:      opt.Workers,
			Threshold:    opt.Threshold,
			DisableGamma: opt.DisableGamma,
			Breakdown:    opt.Breakdown,
		})
	case AlgoSerial:
		return brandes.Serial(g), nil
	case AlgoPreds:
		return brandes.Preds(g, opt.Workers), nil
	case AlgoSuccs:
		return brandes.Succs(g, opt.Workers), nil
	case AlgoLockSyncFree:
		return brandes.LockSyncFree(g, opt.Workers), nil
	case AlgoAsync:
		return brandes.Async(g, opt.Workers)
	case AlgoHybrid:
		return brandes.Hybrid(g, opt.Workers), nil
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %q", opt.Algorithm)
	}
}

// ApproximateBC estimates BC from a uniform source sample (Bader et al.
// [19]); the result is scaled to the exact magnitude.
func ApproximateBC(g *Graph, samples int, seed int64) []float64 {
	return brandes.Sampled(g, samples, seed)
}

// ApproxOptions configures the decomposition-aware estimator (internal/approx).
type ApproxOptions = approx.Options

// ApproxResult is a finished decomposition-aware estimate.
type ApproxResult = approx.Result

// ApproximateBCDecomposed estimates BC with the per-sub-graph pivot sampler
// fused with the APGRE decomposition: sources are sampled per sub-graph and
// Horvitz–Thompson scaled while the α/β/γ boundary corrections stay exact.
// Unlike ApproximateBC this is unbiased per vertex, reproduces exact BC when
// the budget covers every root, and supports an adaptive eps mode
// (ApproxOptions.Eps) with a bootstrap stopping rule. Unweighted graphs only.
func ApproximateBCDecomposed(g *Graph, opt ApproxOptions) (*ApproxResult, error) {
	return approx.Estimate(g, opt)
}

// WeightedEdge is an edge with a positive length.
type WeightedEdge = graph.WeightedEdge

// NewWeightedGraph builds a weighted graph (positive weights; parallel edges
// keep the minimum). Weighted graphs work with AlgoAPGRE and AlgoSerial via
// WeightedBetweennessCentrality.
func NewWeightedGraph(n int, edges []WeightedEdge, directed bool) *Graph {
	return graph.NewWeightedFromEdges(n, edges, directed)
}

// AttachRandomWeights returns a weighted copy of g with integer weights in
// [1, maxW].
func AttachRandomWeights(g *Graph, maxW int, seed int64) *Graph {
	return gen.WithRandomWeights(g, maxW, seed)
}

// WeightedBetweennessCentrality computes exact BC on a weighted graph.
// AlgoAPGRE (default) uses the articulation-point decomposition with
// Dijkstra sweeps — our extension of the paper beyond its unweighted scope —
// and AlgoSerial the textbook Dijkstra-Brandes reference; other algorithm
// names are rejected.
func WeightedBetweennessCentrality(g *Graph, opt Options) ([]float64, error) {
	switch opt.Algorithm {
	case AlgoAPGRE, "":
		return core.ComputeWeighted(g, core.Options{
			Workers:      opt.Workers,
			Threshold:    opt.Threshold,
			DisableGamma: opt.DisableGamma,
			Breakdown:    opt.Breakdown,
		})
	case AlgoSerial:
		if !g.Weighted() {
			return nil, fmt.Errorf("repro: graph is unweighted; use BetweennessCentrality")
		}
		return brandes.WeightedParallel(g, opt.Workers), nil
	default:
		return nil, fmt.Errorf("repro: algorithm %q has no weighted variant", opt.Algorithm)
	}
}

// EdgeScore pairs an edge with its betweenness.
type EdgeScore = brandes.EdgeScore

// EdgeBetweenness computes exact edge betweenness centrality and returns
// one combined score per edge, highest first (per arc for directed graphs).
func EdgeBetweenness(g *Graph, workers int) []EdgeScore {
	return brandes.CombineUndirectedEdges(g, brandes.EdgeBCParallel(g, workers))
}

// Communities is a detected community structure.
type Communities = community.Result

// CommunityOptions configures DetectCommunities.
type CommunityOptions = community.Options

// DetectCommunities runs Girvan–Newman divisive clustering (the paper's
// motivating application [7]) on an undirected graph, using the exact
// edge-betweenness engine.
func DetectCommunities(g *Graph, opt CommunityOptions) (*Communities, error) {
	return community.GirvanNewman(g, opt)
}

// Modularity scores a community labelling with Newman's Q.
func Modularity(g *Graph, labels []int32) float64 {
	return community.Modularity(g, labels)
}

// PivotStrategy selects how ApproximateBCWith chooses its sample sources.
type PivotStrategy = brandes.PivotStrategy

// The pivot-selection strategies of Brandes & Pich [20].
const (
	PivotUniform = brandes.PivotUniform
	PivotDegree  = brandes.PivotDegree
	PivotMaxMin  = brandes.PivotMaxMin
)

// ApproximateBCWith estimates BC from `samples` pivots chosen by the given
// strategy.
func ApproximateBCWith(g *Graph, samples int, strategy PivotStrategy, seed int64) ([]float64, error) {
	return brandes.SampledWith(g, samples, strategy, seed)
}

// HarmonicCentrality computes H(v) = Σ 1/dist(v,t), the disconnected-robust
// closeness variant.
func HarmonicCentrality(g *Graph, workers int) []float64 {
	return closeness.Harmonic(g, workers)
}

// RelabelBFS returns a locality-optimized copy of g (vertices renumbered in
// BFS order, Cong & Makarychev [24]) and the old->new permutation; map
// scores back with scores_old[v] = scores_new[perm[v]].
func RelabelBFS(g *Graph) (*Graph, []V) {
	perm := graph.BFSOrder(g)
	return graph.Relabel(g, perm), perm
}

// RelabelByDegree renumbers vertices by decreasing degree (hub packing).
func RelabelByDegree(g *Graph) (*Graph, []V) {
	perm := graph.DegreeOrder(g)
	return graph.Relabel(g, perm), perm
}

// IncrementalBC maintains exact BC scores across edge insertions and
// removals, recomputing only the affected sub-graph when the change is
// confined to one (see internal/core.Incremental).
type IncrementalBC = core.Incremental

// NewIncrementalBC builds the incremental maintainer for an unweighted graph.
func NewIncrementalBC(g *Graph, opt Options) (*IncrementalBC, error) {
	return core.NewIncremental(g, core.Options{
		Threshold:    opt.Threshold,
		DisableGamma: opt.DisableGamma,
	})
}

// ClosenessResult holds per-vertex closeness data.
type ClosenessResult = closeness.Result

// ClosenessCentrality computes exact closeness for every vertex. Undirected
// graphs route through the articulation-point-accelerated engine (the
// paper's decomposition applied to a second centrality — see
// internal/closeness); directed graphs use the per-vertex BFS baseline.
func ClosenessCentrality(g *Graph, workers int) (*ClosenessResult, error) {
	if g.Directed() {
		return closeness.Exact(g, workers), nil
	}
	return closeness.Decomposed(g, closeness.Options{Workers: workers})
}

// VertexScore pairs a vertex with its BC score.
type VertexScore struct {
	Vertex V
	Score  float64
}

// TopK returns the k highest-scoring vertices in decreasing order
// (ties by vertex id).
func TopK(bc []float64, k int) []VertexScore {
	all := make([]VertexScore, len(bc))
	for v, s := range bc {
		all[v] = VertexScore{Vertex: V(v), Score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Vertex < all[j].Vertex
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Decomposition summarizes APGRE's articulation-point partition of a graph.
type Decomposition struct {
	// Subgraphs is the number of sub-graphs.
	Subgraphs int
	// ArticulationPoints is the number of boundary articulation points.
	ArticulationPoints int
	// Roots is the number of BFS roots after total-redundancy removal.
	Roots int64
	// TopVerts/TopArcs are the largest sub-graph's size (Table 4's shape).
	TopVerts int
	TopArcs  int64
}

// Decompose reports the decomposition shape for g (Table 4's measurement).
func Decompose(g *Graph, threshold int) (Decomposition, error) {
	d, err := decompose.Decompose(g, decompose.Options{Threshold: threshold})
	if err != nil {
		return Decomposition{}, err
	}
	out := Decomposition{
		Subgraphs:          len(d.Subgraphs),
		ArticulationPoints: d.NumArticulation,
		Roots:              d.TotalRoots(),
	}
	if d.TopIndex >= 0 {
		out.TopVerts = d.Subgraphs[d.TopIndex].NumVerts()
		out.TopArcs = d.Subgraphs[d.TopIndex].NumArcs()
	}
	return out, nil
}

// Redundancy reports how Brandes' work on g splits into effective work,
// partial redundancy and total redundancy (the paper's Figure 7).
type Redundancy struct {
	Effective, Partial, Total float64
	Sampled                   bool
}

// AnalyzeRedundancy measures g's redundancy profile.
func AnalyzeRedundancy(g *Graph, threshold int) (Redundancy, error) {
	d, err := decompose.Decompose(g, decompose.Options{Threshold: threshold})
	if err != nil {
		return Redundancy{}, err
	}
	rep := core.AnalyzeRedundancy(g, d, 0, 1)
	return Redundancy{Effective: rep.Effective, Partial: rep.Partial,
		Total: rep.Total, Sampled: rep.Sampled}, nil
}

// Breakdown re-exports APGRE's phase breakdown type.
type Breakdown = core.Breakdown

// Timing runs fn and returns its duration — a convenience for benchmarks
// and examples.
func Timing(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
